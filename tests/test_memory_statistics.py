"""Tests for the flat memory model and the execution/measurement statistics types."""

import pytest

from repro.config import base_configuration
from repro.errors import SimulationError
from repro.isa import Assembler
from repro.microarch import (
    DEFAULT_CLOCK_MHZ,
    ExecutionStatistics,
    Memory,
    cycles_to_seconds,
)
from repro.microarch.cache import CacheStatistics
from repro.platform.measurement import CostDelta


class TestMemory:
    def test_word_half_byte_roundtrip(self):
        memory = Memory(1024)
        memory.store_word(0, 0xDEADBEEF)
        assert memory.load_word(0) == 0xDEADBEEF
        memory.store_half(4, 0xBEEF)
        assert memory.load_half(4) == 0xBEEF
        memory.store_byte(6, 0xAB)
        assert memory.load_byte(6) == 0xAB

    def test_little_endian_layout(self):
        memory = Memory(64)
        memory.store_word(0, 0x11223344)
        assert memory.load_byte(0) == 0x44
        assert memory.load_half(2) == 0x1122

    def test_values_wrap_to_field_width(self):
        memory = Memory(64)
        memory.store_word(0, 2**40 + 7)
        assert memory.load_word(0) == 7
        memory.store_byte(8, 0x1FF)
        assert memory.load_byte(8) == 0xFF

    def test_alignment_enforced(self):
        memory = Memory(64)
        with pytest.raises(SimulationError):
            memory.load_word(2)
        with pytest.raises(SimulationError):
            memory.store_half(1, 0)

    def test_bounds_enforced(self):
        memory = Memory(64)
        with pytest.raises(SimulationError):
            memory.load_word(64)
        with pytest.raises(SimulationError):
            memory.write_bytes(60, b"123456789")

    def test_bulk_and_word_helpers(self):
        memory = Memory(256)
        memory.write_words(8, [1, 2, 3])
        assert memory.read_words(8, 3) == [1, 2, 3]
        memory.write_bytes(100, b"abc")
        assert memory.read_bytes(100, 3) == b"abc"

    def test_for_program_loads_the_data_segment(self):
        asm = Assembler("t")
        asm.data_label("v")
        asm.word_data([42])
        asm.halt()
        program = asm.assemble()
        memory = Memory.for_program(program)
        assert memory.load_word(program.address_of("v")) == 42

    def test_invalid_size_rejected(self):
        with pytest.raises(SimulationError):
            Memory(0)


class TestStatistics:
    def _stats(self, cycles=1000, instructions=500):
        return ExecutionStatistics(
            workload="w",
            configuration=base_configuration(),
            instruction_count=instructions,
            cycles=cycles,
            cycle_breakdown={"base": instructions, "other": cycles - instructions},
            icache=CacheStatistics(100, 100, 0, 5, 0),
            dcache=CacheStatistics(50, 40, 10, 8, 2),
        )

    def test_cpi_and_seconds(self):
        stats = self._stats()
        assert stats.cpi == pytest.approx(2.0)
        assert stats.seconds == pytest.approx(cycles_to_seconds(1000))
        assert cycles_to_seconds(25_000_000) == pytest.approx(1.0)
        assert DEFAULT_CLOCK_MHZ == 25.0

    def test_miss_rates_and_breakdown_fractions(self):
        stats = self._stats()
        assert stats.icache_miss_rate == pytest.approx(0.05)
        assert stats.dcache_miss_rate == pytest.approx(0.2)
        fractions = stats.breakdown_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_runtime_delta_percent(self):
        base = self._stats(cycles=1000)
        faster = self._stats(cycles=900)
        assert faster.runtime_delta_percent(base) == pytest.approx(-10.0)
        assert base.runtime_delta_percent(faster) == pytest.approx(100 * 100 / 900)

    def test_cost_delta_chip(self):
        delta = CostDelta(rho=-3.0, lam=1.5, beta=2.5)
        assert delta.chip == pytest.approx(4.0)

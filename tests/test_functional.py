"""Tests for the functional simulator (architectural behaviour and trace recording)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.isa import Assembler, OpClass
from repro.microarch import FunctionalSimulator


def run(asm):
    return FunctionalSimulator(asm.assemble()).run()


class TestArithmetic:
    def test_add_sub_logic(self):
        asm = Assembler("t")
        asm.set("g1", 10)
        asm.add("g2", "g1", 5)
        asm.sub("g3", "g2", "g1")
        asm.xor("g4", "g2", "g3")
        asm.and_("g5", "g2", 12)
        asm.or_("g6", "g5", 1)
        asm.halt()
        result = run(asm)
        assert result.register("g2") == 15
        assert result.register("g3") == 5
        assert result.register("g4") == 10
        assert result.register("g5") == 12
        assert result.register("g6") == 13

    def test_32_bit_wraparound(self):
        asm = Assembler("t")
        asm.set("g1", 0xFFFFFFFF)
        asm.add("g2", "g1", 1)
        asm.halt()
        assert run(asm).register("g2") == 0

    def test_shifts(self):
        asm = Assembler("t")
        asm.set("g1", 0x80000000)
        asm.srl("g2", "g1", 4)
        asm.sra("g3", "g1", 4)
        asm.set("g4", 3)
        asm.sll("g5", "g4", 2)
        asm.halt()
        result = run(asm)
        assert result.register("g2") == 0x08000000
        assert result.register("g3") == 0xF8000000
        assert result.register("g5") == 12

    def test_multiply_and_divide(self):
        asm = Assembler("t")
        asm.set("g1", 1234)
        asm.set("g2", 567)
        asm.umul("g3", "g1", "g2")
        asm.udiv("g4", "g3", "g1")
        asm.set("g5", -8)
        asm.sdiv("g6", "g5", 2)
        asm.halt()
        result = run(asm)
        assert result.register("g3") == 1234 * 567
        assert result.register("g4") == 567
        assert result.registers.read_signed(6) == -4

    def test_division_by_zero_raises(self):
        asm = Assembler("t")
        asm.set("g1", 5)
        asm.udiv("g2", "g1", "g0")
        asm.halt()
        with pytest.raises(SimulationError):
            run(asm)

    def test_sethi(self):
        asm = Assembler("t")
        asm.sethi("g1", 0x12345)
        asm.halt()
        assert run(asm).register("g1") == 0x12345 << 11


class TestMemory:
    def test_word_half_byte_accesses(self):
        asm = Assembler("t")
        asm.data_label("buffer")
        asm.word_data([0xAABBCCDD, 0])
        asm.set("g1", "buffer")
        asm.ld("g2", "g1", 0)
        asm.lduh("g3", "g1", 0)
        asm.ldub("g4", "g1", 3)
        asm.set("g5", 0x1234)
        asm.st("g5", "g1", 4)
        asm.ld("g6", "g1", 4)
        asm.stb("g5", "g1", 0)
        asm.ldub("g7", "g1", 0)
        asm.halt()
        result = run(asm)
        assert result.register("g2") == 0xAABBCCDD
        assert result.register("g3") == 0xCCDD
        assert result.register("g4") == 0xAA
        assert result.register("g6") == 0x1234
        assert result.register("g7") == 0x34

    def test_signed_byte_and_half_loads(self):
        asm = Assembler("t")
        asm.data_label("buffer")
        asm.byte_data([0xFF, 0x80, 0x00, 0x00])
        asm.set("g1", "buffer")
        asm.ldsb("g2", "g1", 0)
        asm.ldsh("g3", "g1", 0)
        asm.halt()
        result = run(asm)
        assert result.registers.read_signed(2) == -1
        assert result.registers.read_signed(3) == -32513  # 0x80FF sign extended

    def test_misaligned_word_access_raises(self):
        asm = Assembler("t")
        asm.set("g1", 0x80001)
        asm.ld("g2", "g1", 0)
        asm.halt()
        with pytest.raises(SimulationError):
            run(asm)


class TestControlFlow:
    @pytest.mark.parametrize("a,b,branch,taken", [
        (1, 1, "be", True), (1, 2, "be", False),
        (1, 2, "bne", True), (3, 2, "bg", True), (2, 3, "bg", False),
        (2, 3, "bl", True), (3, 3, "ble", True), (3, 3, "bge", True),
        (5, 3, "bgu", True), (3, 5, "bleu", True),
    ])
    def test_conditional_branches(self, a, b, branch, taken):
        asm = Assembler("t")
        asm.set("g1", a)
        asm.set("g2", b)
        asm.set("g3", 0)
        asm.cmp("g1", "g2")
        getattr(asm, branch)("skip")
        asm.set("g3", 1)
        asm.label("skip")
        asm.halt()
        result = run(asm)
        assert (result.register("g3") == 0) == taken

    def test_loop_executes_expected_iterations(self):
        asm = Assembler("t")
        asm.set("g1", 10)
        asm.set("g2", 0)
        asm.label("loop")
        asm.add("g2", "g2", "g1")
        asm.subcc("g1", "g1", 1)
        asm.bne("loop")
        asm.halt()
        assert run(asm).register("g2") == sum(range(1, 11))

    def test_call_and_leaf_return(self):
        asm = Assembler("t")
        asm.set("o0", 20)
        asm.call("double")
        asm.mov("g1", "o0")
        asm.halt()
        asm.label("double")
        asm.add("o0", "o0", "o0")
        asm.retl()
        assert run(asm).register("g1") == 40

    def test_call_with_register_window(self):
        asm = Assembler("t")
        asm.set("o0", 5)
        asm.set("g5", 11)
        asm.call("func")
        asm.mov("g1", "o0")
        asm.halt()
        asm.label("func")
        asm.save(96)
        asm.add("l0", "i0", 100)     # callee works in its own window
        asm.mov("i0", "l0")          # return value through the ins
        asm.ret()
        result = run(asm)
        assert result.register("g1") == 105
        assert result.register("g5") == 11
        assert result.max_window_depth == 1

    def test_infinite_loop_hits_instruction_budget(self):
        asm = Assembler("t")
        asm.label("loop")
        asm.ba("loop")
        program = asm.assemble()
        with pytest.raises(SimulationError):
            FunctionalSimulator(program, max_instructions=1000).run()

    def test_running_off_the_end_raises(self):
        asm = Assembler("t")
        asm.nop()  # no halt
        with pytest.raises(SimulationError):
            run(asm)


class TestTraceRecording:
    def test_trace_classes_and_addresses(self):
        asm = Assembler("t")
        asm.data_label("buffer")
        asm.word_data([7])
        asm.set("g1", "buffer")
        asm.ld("g2", "g1", 0)
        asm.st("g2", "g1", 0)
        asm.smul("g3", "g2", "g2")
        asm.udiv("g4", "g3", "g2")
        asm.halt()
        trace = run(asm).trace
        assert trace.count(OpClass.LOAD) == 1
        assert trace.count(OpClass.STORE) == 1
        assert trace.count(OpClass.MUL) == 1
        assert trace.count(OpClass.DIV) == 1
        buffer_addr = asm.assemble().address_of("buffer")
        assert list(trace.load_addresses) == [buffer_addr]
        assert list(trace.store_addresses) == [buffer_addr]
        assert trace.data_is_write.tolist() == [False, True]

    def test_load_use_hazard_marked(self):
        asm = Assembler("t")
        asm.data_label("v")
        asm.word_data([3])
        asm.set("g1", "v")
        asm.ld("g2", "g1", 0)
        asm.add("g3", "g2", 1)     # uses the loaded value immediately
        asm.ld("g4", "g1", 0)
        asm.add("g5", "g1", 1)     # does NOT use the loaded value
        asm.halt()
        trace = run(asm).trace
        hazards = trace.load_use_hazard[trace.load_mask]
        assert hazards.tolist() == [True, False]

    def test_cc_branch_hazard_marked(self):
        asm = Assembler("t")
        asm.set("g1", 1)
        asm.cmp("g1", 1)
        asm.be("next")            # immediately after the compare: hazard
        asm.nop()
        asm.label("next")
        asm.cmp("g1", 0)
        asm.nop()
        asm.bne("end")            # one instruction after the compare: no hazard
        asm.label("end")
        asm.halt()
        trace = run(asm).trace
        branch_mask = (trace.op_classes == OpClass.BRANCH_TAKEN.value) | (
            trace.op_classes == OpClass.BRANCH_UNTAKEN.value)
        assert trace.cc_branch_hazard[branch_mask].tolist() == [True, False]

    def test_window_events_balance(self):
        asm = Assembler("t")
        asm.call("f")
        asm.halt()
        asm.label("f")
        asm.save(96)
        asm.ret()
        trace = run(asm).trace
        assert trace.window_events.tolist() == [1, -1]

    def test_branch_taken_vs_untaken_classes(self):
        asm = Assembler("t")
        asm.set("g1", 0)
        asm.cmp("g1", 0)
        asm.be("yes")        # taken
        asm.nop()
        asm.label("yes")
        asm.cmp("g1", 1)
        asm.be("no")         # untaken
        asm.label("no")
        asm.halt()
        trace = run(asm).trace
        assert trace.count(OpClass.BRANCH_TAKEN) == 1
        assert trace.count(OpClass.BRANCH_UNTAKEN) == 1

    def test_mix_summary_fractions_sum_sensibly(self):
        asm = Assembler("t")
        asm.data_label("v")
        asm.word_data([1])
        asm.set("g1", "v")
        asm.ld("g2", "g1", 0)
        asm.st("g2", "g1", 0)
        asm.halt()
        mix = run(asm).trace.mix_summary()
        assert 0 < mix["memory_fraction"] <= 1
        assert mix["instructions"] == run(asm).trace.instruction_count

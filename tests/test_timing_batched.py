"""Broadcast-batched measurement path == per-configuration path, bit for bit.

The sweep fast path factors the timing evaluation of a configuration grid
into one trace feature vector broadcast over compiled configuration
columns (:func:`repro.microarch.timing.evaluate_many`) and routes batches
through :meth:`LiquidPlatform.measure_sweep` /
:meth:`ParallelEvaluator.measure_sweep`.  Its contract is bit-identity
with the per-configuration reference: cycles, the full
``cycle_breakdown``, the window-trap counts, and whole
:class:`Measurement` records (resource reports and seeded cache
statistics included) must match the scalar path exactly, over
hypothesis-generated configuration grids and all four paper workloads.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import config_grid_strategy, window_events_strategy
from repro.config import REGISTER_WINDOW_COUNTS, Replacement, base_configuration
from repro.config.leon_space import Divider, Multiplier
from repro.engine import ParallelEvaluator
from repro.microarch.timing import (
    TimingModel,
    TimingParameters,
    count_window_traps,
    count_window_traps_reference,
    evaluate_many,
)
from repro.platform import LiquidPlatform
from repro.workloads import ArithWorkload


def sweep_grid(base):
    """A deterministic grid covering every timing-relevant parameter."""
    return [
        base,
        base,  # duplicate: sweeps must collapse it like measure_many does
        base.replace(dcache_sets=2, dcache_setsize_kb=8,
                     dcache_replacement=Replacement.LRU),
        base.replace(dcache_sets=2, dcache_replacement=Replacement.LRR,
                     dcache_linesize_words=4),
        base.replace(icache_sets=4, icache_setsize_kb=1,
                     icache_replacement=Replacement.LRU, icache_linesize_words=4),
        base.replace(dcache_fast_read=True, dcache_fast_write=True),
        base.replace(fast_jump=False, icc_hold=False, fast_decode=False),
        base.replace(load_delay=2, register_windows=16),
        base.replace(multiplier=Multiplier.NONE, divider=Divider.NONE),
        base.replace(multiplier=Multiplier.M32X32, register_windows=32),
    ]


# -- count_window_traps: vectorized walk vs scalar reference ----------------------------


@given(events=window_events_strategy(),
       windows=st.sampled_from((2, 3, 4, 5) + REGISTER_WINDOW_COUNTS))
@settings(max_examples=300, deadline=None)
def test_count_window_traps_matches_reference(events, windows):
    assert count_window_traps(events, windows) == \
        count_window_traps_reference(events, windows)


def test_count_window_traps_on_paper_workload_traces(small_workload_map):
    for workload in small_workload_map.values():
        events = workload.trace().window_events
        for windows in (2, 3, 8, 16, 32):
            assert count_window_traps(events, windows) == \
                count_window_traps_reference(events, windows)


def test_window_trap_counts_memoised_per_trace(arith_small):
    trace = arith_small.trace()
    first = trace.window_trap_counts(8)
    assert first == count_window_traps_reference(trace.window_events, 8)
    assert trace.window_trap_counts(8) is first  # served from the memo


def test_workload_features_shared_with_trace(arith_small):
    features = arith_small.features()
    assert features is arith_small.trace().features()  # one memo, shared
    assert features.instruction_count == arith_small.trace().instruction_count
    assert int(features.class_counts.sum()) == features.instruction_count


# -- TimingParameters: precomputed latency lookups --------------------------------------


def test_latency_lookups_match_tables_and_preserve_identity():
    p = TimingParameters()
    for multiplier in Multiplier.ALL:
        assert p.multiplier_latency(multiplier) == dict(p.multiplier_extra)[multiplier]
    for divider in Divider.ALL:
        assert p.divider_latency(divider) == dict(p.divider_extra)[divider]
    # the cached lookup dicts never leak into equality or hashing
    assert p == TimingParameters()
    assert hash(p) == hash(TimingParameters())


# -- evaluate_many vs the per-configuration reference -----------------------------------


@pytest.fixture(scope="module")
def stats_platform():
    """Shared cache-statistics provider (fit deliberately not enforced)."""
    return LiquidPlatform(enforce_fit=False)


@given(configs=config_grid_strategy(max_size=5))
@settings(max_examples=30, deadline=None)
def test_evaluate_many_matches_reference(stats_platform, arith_small, configs):
    trace = arith_small.trace()
    pairs = [stats_platform._cache_statistics(arith_small, c) for c in configs]
    batched = evaluate_many(trace, configs, pairs)
    for config, pair, result in zip(configs, pairs, batched):
        reference = TimingModel(config).evaluate_reference(trace, *pair)
        assert result == reference
        assert result.cycles == reference.cycles
        assert dict(result.cycle_breakdown) == dict(reference.cycle_breakdown)
        assert (result.window_overflows, result.window_underflows) == \
            (reference.window_overflows, reference.window_underflows)
        # the memoised single-shot path agrees too
        assert TimingModel(config).evaluate(trace, *pair) == reference


def test_evaluate_many_all_workloads(small_workload_map, stats_platform, base_config):
    configs = sweep_grid(base_config)
    for workload in small_workload_map.values():
        trace = workload.trace()
        pairs = [stats_platform._cache_statistics(workload, c) for c in configs]
        batched = evaluate_many(trace, configs, pairs)
        for config, pair, result in zip(configs, pairs, batched):
            assert result == TimingModel(config).evaluate_reference(trace, *pair)


def test_evaluate_many_empty_and_misaligned(arith_small):
    trace = arith_small.trace()
    assert evaluate_many(trace, [], []) == []
    with pytest.raises(ValueError):
        evaluate_many(trace, [base_configuration()], [])


# -- measure_sweep == measure_many -------------------------------------------------------


def test_platform_sweep_identical_to_measure_many(small_workload_map, base_config):
    configs = sweep_grid(base_config)
    for workload in small_workload_map.values():
        assert LiquidPlatform().measure_sweep(workload, configs) == \
            LiquidPlatform().measure_many(workload, configs)


def test_platform_sweep_shares_memos_with_per_config_path(arith_small, base_config):
    configs = sweep_grid(base_config)
    platform = LiquidPlatform()
    first = platform.measure(arith_small, configs[2])  # pre-warm one grid point
    runs_before = platform.run_count
    results = platform.measure_sweep(arith_small, configs)
    assert results[2] == first
    distinct = len({c.key() for c in configs})
    assert platform.run_count == runs_before + distinct - 1
    # batched=False falls back to the per-config loop on the same memos
    assert platform.measure_sweep(arith_small, configs, batched=False) == results


@given(configs=config_grid_strategy(min_size=1, max_size=6))
@settings(max_examples=15, deadline=None)
def test_platform_sweep_property_identical(arith_small, configs):
    scalar = LiquidPlatform(enforce_fit=False).measure_many(arith_small, configs)
    sweep = LiquidPlatform(enforce_fit=False).measure_sweep(arith_small, configs)
    assert sweep == scalar


@pytest.mark.parametrize("workers,arena", [(1, False), (2, False), (2, True)])
def test_engine_sweep_identical(small_workload_map, base_config, workers, arena):
    configs = sweep_grid(base_config)
    for workload in small_workload_map.values():
        reference = LiquidPlatform().measure_many(workload, configs)
        with ParallelEvaluator(LiquidPlatform(), workers=workers, arena=arena) as engine:
            assert engine.measure_sweep(workload, configs) == reference
            assert engine.stats.sweep_batches == 1
            assert engine.stats.sweep_evaluations == len(set(
                c.key() for c in configs))
            assert engine.stats.dedup_hits == len(configs) - len(set(
                c.key() for c in configs))


def test_engine_sweep_uses_store(tmp_path, base_config):
    workload = ArithWorkload(iterations=200)
    configs = sweep_grid(base_config)
    reference = LiquidPlatform().measure_many(workload, configs)
    store_path = str(tmp_path / "sweep.jsonl")
    from repro.engine import open_store

    with ParallelEvaluator(LiquidPlatform(), workers=1,
                           store=open_store(store_path)) as first:
        assert first.measure_sweep(workload, configs) == reference
        assert first.stats.store_writes > 0
    with ParallelEvaluator(LiquidPlatform(), workers=1,
                           store=open_store(store_path)) as second:
        assert second.measure_sweep(workload, configs) == reference
        assert second.stats.store_hits == len({c.key() for c in configs})
        assert second.stats.sweep_evaluations == 0

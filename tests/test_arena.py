"""Shared-memory trace arena: round trips, hygiene, and engine integration.

The arena's contract has three parts: attached blocks are zero-copy and
bit-exact views of what the parent published; every segment is unlinked
deterministically when the owner closes (``ParallelEvaluator.__exit__``
included), so nothing survives in ``/dev/shm``; and with the arena
enabled a parallel batch decodes each shared-decode group exactly once,
in the parent (``EngineStats.host_decodes``), with workers attaching the
published views instead of re-decoding (``worker_decodes == 0``).
"""

import glob
import json
import socket
import sys

import numpy as np
import pytest

from repro.config import Replacement
from repro.engine import ParallelEvaluator, arena_available
from repro.engine import arena
from repro.engine.arena import TraceArena, attach, attach_view
from repro.microarch.cachekernel import decode_trace, replay
from repro.microarch.cache import CacheConfig
from repro.platform import LiquidPlatform
from repro.workloads import ArithWorkload

pytestmark = pytest.mark.skipif(
    not arena_available(), reason="shared memory unavailable on this host")


#: POSIX shm segments are only observable as files on Linux; elsewhere the
#: /dev/shm probes assert nothing and liveness comes from the arena itself.
LINUX = sys.platform.startswith("linux")


def shm_segments():
    return set(glob.glob("/dev/shm/psm_*")) if LINUX else set()


def sweep_configs(base):
    """Enough distinct geometries to trigger the parallel pool path."""
    return [
        base,
        base.replace(dcache_sets=1, dcache_setsize_kb=8),
        base.replace(dcache_sets=2, dcache_setsize_kb=2,
                     dcache_replacement=Replacement.LRU),
        base.replace(dcache_sets=2, dcache_replacement=Replacement.LRR),
        base.replace(dcache_sets=4, dcache_setsize_kb=1),
        base.replace(icache_setsize_kb=1),
    ]


class TestArenaBlocks:
    def test_publish_attach_round_trip(self):
        arena = TraceArena()
        try:
            arrays = {
                "pcs": np.arange(100, dtype=np.uint32),
                "data_addresses": np.arange(0, 400, 4, dtype=np.uint32),
                "data_is_write": np.tile([True, False], 50),
            }
            block = arena.publish(arrays, meta={"tag": 7})
            attached = attach(block)
            for name, expected in arrays.items():
                np.testing.assert_array_equal(attached[name], expected)
                assert attached[name].dtype == expected.dtype
                assert not attached[name].flags.writeable
                assert not attached[name].flags.owndata  # zero-copy view
            assert block.meta_dict() == {"tag": 7}
        finally:
            arena.close()

    def test_attachment_is_cached(self):
        arena = TraceArena()
        try:
            block = arena.publish({"xs": np.arange(8, dtype=np.int64)})
            first = attach(block)
            assert attach(block) is first
        finally:
            arena.close()

    def test_view_round_trip_replays_identically(self):
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 1 << 12, size=500).astype(np.int64) * 4
        writes = rng.random(500) < 0.3
        view = decode_trace(addresses, writes, linesize_bytes=16)
        arena = TraceArena()
        try:
            block = arena.publish_view(view)
            shared = attach_view(block)
            assert attach_view(block) is shared  # per-process view cache
            for config in (
                CacheConfig(ways=1, setsize_kb=1, linesize_words=4),
                CacheConfig(ways=2, setsize_kb=1, linesize_words=4,
                            replacement=Replacement.LRU),
                CacheConfig(ways=4, setsize_kb=1, linesize_words=4),
            ):
                assert replay(shared, config) == replay(view, config)
        finally:
            arena.close()

    def test_close_unlinks_every_segment(self):
        from multiprocessing import shared_memory

        arena = TraceArena()
        blocks = [arena.publish({"xs": np.arange(16, dtype=np.int64)})
                  for _ in range(3)]
        assert arena.segment_count == 3
        names = arena.segment_names
        arena.close()
        assert arena.segment_count == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
            if LINUX:
                assert not glob.glob(f"/dev/shm/{name}")
        arena.close()  # idempotent
        assert blocks[0].nbytes > 0


class TestEvaluatorIntegration:
    def test_one_decode_per_host_and_identical_results(self, base_config):
        configs = sweep_configs(base_config)
        reference = LiquidPlatform().measure_many(
            ArithWorkload(iterations=200), configs)
        before = shm_segments()
        with ParallelEvaluator(LiquidPlatform(), workers=2, arena=True) as engine:
            results = engine.measure_sweep(ArithWorkload(iterations=200), configs)
            assert results == reference
            stats = engine.stats
            assert stats.parallel_simulations > 0
            assert stats.worker_decodes == 0
            assert stats.host_decodes == stats.cache_groups
            assert stats.arena_segments > 0
            assert stats.arena_bytes > 0
            assert engine._arena.segment_count > 0  # segments live while the pool runs
            if LINUX:
                assert shm_segments() - before
        assert shm_segments() - before == set()
        assert engine.stats.arena_segments == 0  # close() zeroes the audit fields
        assert engine.stats.arena_bytes == 0

    def test_exit_unlinks_segments_even_after_multiple_batches(self, base_config):
        configs = sweep_configs(base_config)
        before = shm_segments()
        with ParallelEvaluator(LiquidPlatform(), workers=2, arena=True) as engine:
            engine.measure_sweep(ArithWorkload(iterations=200), configs)
            engine.measure_many(ArithWorkload(iterations=150), configs)
        assert shm_segments() - before == set()

    def test_close_is_restartable(self, base_config):
        configs = sweep_configs(base_config)
        workload = ArithWorkload(iterations=200)
        reference = LiquidPlatform().measure_many(workload, configs)
        before = shm_segments()
        engine = ParallelEvaluator(LiquidPlatform(), workers=2, arena=True)
        try:
            assert engine.measure_sweep(workload, configs) == reference
            engine.close()
            assert shm_segments() - before == set()
            # the evaluator restarts lazily and republishes what it needs
            fresh_configs = sweep_configs(base_config.replace(dcache_linesize_words=4))
            assert engine.measure_sweep(workload, fresh_configs) == \
                LiquidPlatform().measure_many(workload, fresh_configs)
        finally:
            engine.close()
        assert shm_segments() - before == set()

    def test_arena_off_matches_arena_on(self, base_config):
        configs = sweep_configs(base_config)
        with ParallelEvaluator(LiquidPlatform(), workers=2, arena=True) as on:
            with_arena = on.measure_sweep(ArithWorkload(iterations=200), configs)
        with ParallelEvaluator(LiquidPlatform(), workers=2, arena=False) as off:
            without = off.measure_sweep(ArithWorkload(iterations=200), configs)
            assert off.stats.arena_segments == 0
            assert off.stats.worker_decodes > 0  # workers decoded for themselves
        assert with_arena == without


class TestThresholdCalibration:
    """The measured per-host publish threshold (``calibrate_threshold``)."""

    @pytest.fixture(autouse=True)
    def isolated_calibration(self, tmp_path, monkeypatch):
        """Each test gets its own cache file and a cold process memo."""
        monkeypatch.delenv(arena.ARENA_THRESHOLD_ENV, raising=False)
        monkeypatch.setenv(arena.ARENA_CALIBRATION_CACHE_ENV,
                           str(tmp_path / "calibration.json"))
        monkeypatch.setattr(arena, "_CALIBRATED", None)

    def test_env_override_wins_unchanged(self, monkeypatch):
        monkeypatch.setenv(arena.ARENA_THRESHOLD_ENV, "12345")
        assert arena.calibrate_threshold() == 12345
        assert arena.calibrate_threshold(force=True) == 12345

    def test_probe_result_is_clamped_and_cached_per_host(self, tmp_path,
                                                         monkeypatch):
        value = arena.calibrate_threshold()
        low, high = arena._THRESHOLD_BOUNDS
        assert low <= value <= high
        # the probe ran once; the per-host JSON cache now answers directly
        entry = json.loads((tmp_path / "calibration.json").read_text())
        assert entry["host"] == socket.gethostname()
        assert entry["threshold"] == value

        def no_probe(*args, **kwargs):  # a second probe would be a bug
            raise AssertionError("re-probed despite a warm cache")

        monkeypatch.setattr(arena, "measure_publish_bandwidth", no_probe)
        monkeypatch.setattr(arena, "_CALIBRATED", None)  # new process
        assert arena.calibrate_threshold() == value

    def test_another_hosts_cache_entry_is_ignored(self, tmp_path, monkeypatch):
        (tmp_path / "calibration.json").write_text(
            json.dumps({"host": "someone-else", "threshold": 999}))
        value = arena.calibrate_threshold()
        assert value != 999  # stale entry discarded, fresh probe ran
        entry = json.loads((tmp_path / "calibration.json").read_text())
        assert entry["host"] == socket.gethostname()

    def test_slower_hosts_need_larger_batches(self, monkeypatch):
        monkeypatch.setattr(arena, "measure_publish_bandwidth",
                            lambda *a, **k: arena.REFERENCE_PUBLISH_BANDWIDTH / 2)
        doubled = arena.calibrate_threshold(force=True)
        assert doubled == 2 * arena.DEFAULT_PUBLISH_THRESHOLD

    def test_adaptive_evaluator_records_the_calibrated_threshold(
            self, base_config):
        workload = ArithWorkload(iterations=200)
        configs = sweep_configs(base_config)
        with ParallelEvaluator(LiquidPlatform(), workers=2) as engine:
            engine.measure_sweep(workload, configs)
            # the tiny batch is below any sane threshold: publish skipped,
            # and the decision's threshold is on the audit trail
            assert engine.stats.arena_skipped > 0
            assert engine.stats.arena_threshold == arena.calibrate_threshold()

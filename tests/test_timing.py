"""Tests for the cycle-level timing model and window-trap accounting."""

import numpy as np
import pytest

from repro.config import base_configuration
from repro.isa import Assembler
from repro.microarch import (
    FunctionalSimulator,
    ProcessorModel,
    TimingParameters,
    count_window_traps,
)


@pytest.fixture(scope="module")
def memory_trace():
    """A small program with loads, stores, multiplies, branches and a call."""
    asm = Assembler("timing")
    asm.data_label("buffer")
    asm.word_data(list(range(64)))
    asm.set("g1", "buffer")
    asm.set("g2", 16)
    asm.label("loop")
    asm.ld("g3", "g1", 0)
    asm.add("g4", "g3", 1)        # load-use dependency
    asm.smul("g5", "g4", 3)
    asm.st("g5", "g1", 0)
    asm.add("g1", "g1", 4)
    asm.subcc("g2", "g2", 1)
    asm.bne("loop")
    asm.call("leaf")
    asm.halt()
    asm.label("leaf")
    asm.save(96)
    asm.ret()
    return FunctionalSimulator(asm.assemble()).run().trace


def cycles(config, trace):
    return ProcessorModel(config).evaluate(trace).cycles


class TestWindowTraps:
    def test_no_traps_when_windows_suffice(self):
        events = np.array([1, 1, -1, -1], dtype=np.int8)
        assert count_window_traps(events, 8) == (0, 0)

    def test_deep_recursion_spills_and_fills(self):
        # 8 windows, one reserved => 7 usable frames (call depths 0..6);
        # every save beyond that spills exactly once and is filled on return.
        depth = 10
        events = np.array([1] * depth + [-1] * depth, dtype=np.int8)
        overflows, underflows = count_window_traps(events, 8)
        assert overflows == depth - 6
        assert underflows == depth - 6
        assert count_window_traps(events, 16) == (0, 0)

    def test_more_windows_mean_fewer_traps(self):
        events = np.array(([1] * 20 + [-1] * 20) * 3, dtype=np.int8)
        traps_small = sum(count_window_traps(events, 8))
        traps_large = sum(count_window_traps(events, 32))
        assert traps_large < traps_small

    def test_oscillation_at_the_boundary(self):
        # repeatedly crossing the spill boundary causes a trap per crossing
        events = np.array([1] * 8 + [-1, 1] * 5 + [-1] * 8, dtype=np.int8)
        overflows, underflows = count_window_traps(events, 8)
        assert overflows >= 1 and underflows >= 1


class TestTimingParameters:
    def test_latency_tables_cover_all_options(self, space):
        params = TimingParameters()
        for multiplier in space["multiplier"].values:
            assert params.multiplier_latency(multiplier) >= 0
        for divider in space["divider"].values:
            assert params.divider_latency(divider) >= 0

    def test_better_multipliers_have_lower_latency(self):
        params = TimingParameters()
        order = ["none", "iterative", "m16x16", "m16x16_pipe", "m32x16", "m32x32"]
        latencies = [params.multiplier_latency(m) for m in order]
        assert latencies == sorted(latencies, reverse=True)

    def test_line_fill_penalty_grows_with_line_size(self):
        params = TimingParameters()
        assert params.line_fill_penalty(8) > params.line_fill_penalty(4)


class TestConfigurationEffects:
    """Each runtime-relevant parameter must move the cycle count in the right direction."""

    def test_cycles_equal_breakdown_sum(self, memory_trace, base_config):
        stats = ProcessorModel(base_config).evaluate(memory_trace)
        assert stats.cycles == sum(stats.cycle_breakdown.values())
        assert stats.instruction_count == len(memory_trace)
        assert stats.cpi >= 1.0

    def test_faster_multiplier_reduces_cycles(self, memory_trace, base_config):
        slow = cycles(base_config.replace(multiplier="iterative"), memory_trace)
        default = cycles(base_config, memory_trace)
        fast = cycles(base_config.replace(multiplier="m32x32"), memory_trace)
        assert fast < default < slow

    def test_removing_divider_only_hurts_divides(self, memory_trace, base_config):
        # the trace contains no divides, so removing the divider is free
        assert cycles(base_config.replace(divider="none"), memory_trace) == cycles(
            base_config, memory_trace)

    def test_fast_read_and_write_reduce_cycles(self, memory_trace, base_config):
        assert cycles(base_config.replace(dcache_fast_read=True), memory_trace) < cycles(
            base_config, memory_trace)
        assert cycles(base_config.replace(dcache_fast_write=True), memory_trace) < cycles(
            base_config, memory_trace)

    def test_load_delay_two_penalises_load_use(self, memory_trace, base_config):
        assert cycles(base_config.replace(load_delay=2), memory_trace) > cycles(
            base_config, memory_trace)

    def test_disabling_fast_jump_increases_cycles(self, memory_trace, base_config):
        assert cycles(base_config.replace(fast_jump=False), memory_trace) > cycles(
            base_config, memory_trace)

    def test_disabling_icc_hold_increases_cycles(self, memory_trace, base_config):
        assert cycles(base_config.replace(icc_hold=False), memory_trace) > cycles(
            base_config, memory_trace)

    def test_disabling_fast_decode_increases_cycles(self, memory_trace, base_config):
        assert cycles(base_config.replace(fast_decode=False), memory_trace) > cycles(
            base_config, memory_trace)

    def test_register_windows_do_not_hurt_shallow_code(self, memory_trace, base_config):
        assert cycles(base_config.replace(register_windows=32), memory_trace) == cycles(
            base_config, memory_trace)

    def test_infer_mult_div_has_no_runtime_effect(self, memory_trace, base_config):
        assert cycles(base_config.replace(infer_mult_div=False), memory_trace) == cycles(
            base_config, memory_trace)

    def test_statistics_summary_and_seconds(self, memory_trace, base_config):
        stats = ProcessorModel(base_config).evaluate(memory_trace)
        assert stats.seconds > 0
        assert "cycles" in stats.summary()
        assert stats.runtime_delta_percent(stats) == 0.0

"""The distributed campaign grid: claim exclusivity, crash recovery, retry.

A campaign registers its configuration grid as rows of an ``experiments``
table and lets any number of worker processes claim and evaluate batches
(see :mod:`repro.engine.campaign`).  These tests pin the properties that
make that sound: registration is idempotent, concurrent claimants never
receive the same row, a worker that dies mid-claim loses its lease and
the rows complete elsewhere, failing rows retry up to the attempt cap
and then rest in ``failed``, interrupts hand claims straight back, and a
drained campaign's measurements are bit-identical to a direct
``measure_sweep`` of the same grid.
"""

import multiprocessing
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.engine import CampaignGrid, CampaignWorker, ParallelEvaluator
from repro.engine.campaign import STATUS_DONE, STATUS_FAILED, STATUS_OPEN
from repro.engine.store import SqliteResultStore, config_key_string
from repro.platform import LiquidPlatform

REPO_ROOT = Path(__file__).resolve().parents[1]


def grid_configs(base_config, count=6):
    """``count`` distinct dcache geometries (several share a batch key)."""
    configs = [
        base_config.replace(dcache_sets=sets, dcache_setsize_kb=size)
        for sets in (1, 2, 3)
        for size in (1, 2, 4, 8)
    ]
    assert len(configs) >= count
    return configs[:count]


def drain(grid, workload, **kwargs):
    """Run one worker to completion and return its report."""
    kwargs.setdefault("workers", 1)
    max_batches = kwargs.pop("max_batches", None)
    with CampaignWorker(grid, [workload], **kwargs) as worker:
        return worker.run(max_batches=max_batches)


class TestRegistration:
    def test_register_counts_and_is_idempotent(self, tmp_path, base_config,
                                               arith_small):
        configs = grid_configs(base_config)
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            assert grid.register(arith_small, configs) == len(configs)
            assert grid.register(arith_small, configs) == 0
            # a partially re-registered grid adds only the unseen rows
            extra = base_config.replace(dcache_sets=4, dcache_setsize_kb=1)
            assert grid.register(arith_small, configs + [extra]) == 1
            counts = grid.status()
            assert counts[STATUS_OPEN] == len(configs) + 1
            assert counts["total"] == len(configs) + 1

    def test_second_workload_gets_its_own_rows(self, tmp_path, base_config,
                                               arith_small, drr_small):
        configs = grid_configs(base_config, 4)
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.register(arith_small, configs)
            assert grid.register(drr_small, configs) == len(configs)
            assert grid.status()["total"] == 2 * len(configs)


class TestClaiming:
    def test_claim_is_exclusive_and_round_trips_configurations(
            self, tmp_path, base_config, arith_small):
        configs = grid_configs(base_config)
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.register(arith_small, configs)
            rows = grid.claim("w1", batch=100)
            # one claim takes one batch-key group only, so the shared-decode
            # sweep wins survive sharding
            keys = {CampaignGrid.batch_key(row.fingerprint, row.configuration)
                    for row in rows}
            assert len(keys) == 1
            # reconstructed configurations match the registered ones exactly
            registered = {config_key_string(config) for config in configs}
            assert all(config_key_string(row.configuration) in registered
                       for row in rows)
            # claimed rows are invisible to other claimants
            other = grid.claim("w2", batch=100)
            assert {r.rowid for r in rows}.isdisjoint(r.rowid for r in other)

    def test_release_refunds_the_attempt(self, tmp_path, base_config,
                                         arith_small):
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.register(arith_small, grid_configs(base_config, 3))
            rows = grid.claim("w1", batch=3)
            assert all(row.attempts == 1 for row in rows)
            grid.release([row.rowid for row in rows])
            # a clean hand-back does not burn the attempt budget
            assert all(row.attempts == 1
                       for row in grid.claim("w2", batch=3))

    def test_concurrent_processes_claim_disjoint_rows(self, tmp_path,
                                                      base_config,
                                                      arith_small):
        """Racing claimants: every row claimed exactly once, none lost."""
        path = str(tmp_path / "grid.sqlite")
        configs = grid_configs(base_config, 12)
        with CampaignGrid(path) as grid:
            grid.register(arith_small, configs)
            total = grid.status()["total"]

        start = multiprocessing.Event()
        queue = multiprocessing.Queue()

        def claim_all(worker_id):
            claimed = []
            with CampaignGrid(path) as worker_grid:
                start.wait(10)
                while True:
                    rows = worker_grid.claim(worker_id, batch=2)
                    if not rows:
                        break
                    claimed.extend(row.rowid for row in rows)
            queue.put((worker_id, claimed))

        claimants = [multiprocessing.Process(target=claim_all, args=(f"w{i}",))
                     for i in range(3)]
        for proc in claimants:
            proc.start()
        start.set()
        results = dict(queue.get(timeout=30) for _ in claimants)
        for proc in claimants:
            proc.join(timeout=10)
        sets = [set(ids) for ids in results.values()]
        union = set().union(*sets)
        assert len(union) == total  # nothing lost
        assert sum(len(s) for s in sets) == total  # nothing double-claimed


class TestCrashRecovery:
    def test_stale_claim_is_reclaimed_and_completed(self, tmp_path,
                                                    base_config, arith_small):
        """A claimant that vanishes loses its lease; the grid still drains."""
        path = str(tmp_path / "grid.sqlite")
        configs = grid_configs(base_config)
        with CampaignGrid(path) as grid:
            grid.register(arith_small, configs)
            # simulate a worker dying mid-claim: claim and never settle
            dead = grid.claim("dead-worker", batch=3)
            assert dead
            report = drain(grid, arith_small, lease_seconds=0.0)
            assert report.requeued >= len(dead)
            assert report.engine["claim_requeues"] >= len(dead)
            counts = grid.status()
            assert counts[STATUS_DONE] == counts["total"]
            # the vanished worker's attempt stayed burnt (no refund)
            assert all(row[2] >= 1 for row in grid._conn.execute(
                "SELECT id, status, attempts FROM experiments"))

    def test_unexpired_lease_is_respected(self, tmp_path, base_config,
                                          arith_small):
        path = str(tmp_path / "grid.sqlite")
        with CampaignGrid(path) as grid:
            grid.register(arith_small, grid_configs(base_config, 4))
            held = grid.claim("other", batch=2)
            report = drain(grid, arith_small, lease_seconds=3600.0,
                           retry_failed=False)
            assert report.requeued == 0
            counts = grid.status()
            assert counts["claimed"] == len(held)
            assert counts[STATUS_DONE] == counts["total"] - len(held)

    def test_worker_killed_mid_claim_grid_resumes_to_completion(
            self, tmp_path, base_config, arith_small):
        """SIGKILL a real claiming process; a resuming worker finishes."""
        path = str(tmp_path / "grid.sqlite")
        configs = grid_configs(base_config)
        with CampaignGrid(path) as grid:
            grid.register(arith_small, configs)
            total = grid.status()["total"]

        # the victim claims a batch, reports it, then waits to be killed
        victim_code = textwrap.dedent(f"""
            import os, sys
            from repro.engine import CampaignGrid
            grid = CampaignGrid({path!r})
            rows = grid.claim("victim", batch=3)
            print(len(rows), flush=True)
            sys.stdout.close()
            import time; time.sleep(60)
        """)
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        victim = subprocess.Popen(
            [sys.executable, "-c", victim_code], env=env,
            stdout=subprocess.PIPE, text=True)
        try:
            claimed = int(victim.stdout.readline())
            assert claimed > 0
            victim.kill()  # SIGKILL: no release, no cleanup
            victim.wait(timeout=10)
        finally:
            if victim.poll() is None:
                victim.kill()

        with CampaignGrid(path) as grid:
            assert grid.status()["claimed"] == claimed
            report = drain(grid, arith_small, lease_seconds=0.0)
            assert report.requeued == claimed
            counts = grid.status()
            assert counts[STATUS_DONE] == total
            assert counts[STATUS_OPEN] == counts["claimed"] == 0


class TestFailureRetry:
    def _broken_worker(self, grid, workload, error, **kwargs):
        kwargs.setdefault("workers", 1)
        worker = CampaignWorker(grid, [workload], **kwargs)

        def explode(workload, configs):
            raise RuntimeError(error)

        worker.evaluator.measure_sweep = explode
        return worker

    def test_failing_rows_retry_to_the_attempt_cap_then_rest(
            self, tmp_path, base_config, arith_small):
        configs = grid_configs(base_config, 4)
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.register(arith_small, configs)
            with self._broken_worker(grid, arith_small, "synthetic failure",
                                     max_attempts=3) as worker:
                report = worker.run()  # terminates despite every row failing
            counts = grid.status()
            assert counts[STATUS_FAILED] == counts["total"]
            assert report.failed == 3 * len(configs)  # cap x rows
            rows = list(grid._conn.execute(
                "SELECT attempts, error FROM experiments"))
            assert all(attempts == 3 for attempts, _ in rows)
            assert all("synthetic failure" in error for _, error in rows)

    def test_reset_failed_restores_the_budget_and_the_grid_drains(
            self, tmp_path, base_config, arith_small):
        configs = grid_configs(base_config, 4)
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.register(arith_small, configs)
            with self._broken_worker(grid, arith_small, "boom",
                                     max_attempts=2) as worker:
                worker.run()
            assert grid.status()[STATUS_FAILED] == len(configs)
            assert grid.reset_failed() == len(configs)
            assert grid.status()[STATUS_OPEN] == len(configs)
            drain(grid, arith_small)  # a healthy worker completes the grid
            counts = grid.status()
            assert counts[STATUS_DONE] == counts["total"]

    def test_keyboard_interrupt_releases_the_claimed_rows(
            self, tmp_path, base_config, arith_small):
        configs = grid_configs(base_config, 4)
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.register(arith_small, configs)
            with CampaignWorker(grid, [arith_small], workers=1) as worker:
                def interrupt(workload, configs):
                    raise KeyboardInterrupt
                worker.evaluator.measure_sweep = interrupt
                with pytest.raises(KeyboardInterrupt):
                    worker.run()
            counts = grid.status()
            # everything back open, nothing parked behind a lease...
            assert counts[STATUS_OPEN] == counts["total"]
            # ...and the interrupted attempt was refunded
            assert all(row.attempts == 1
                       for row in grid.claim("next", batch=100))


class TestResultsMatchDirectSweep:
    def test_campaign_measurements_are_bit_identical(self, tmp_path,
                                                     base_config, arith_small):
        """A drained campaign's store equals a direct measure_sweep."""
        path = str(tmp_path / "grid.sqlite")
        configs = grid_configs(base_config)
        with CampaignGrid(path) as grid:
            grid.register(arith_small, configs)
            report = drain(grid, arith_small, batch=4)
            assert grid.status()[STATUS_DONE] == len(configs)
            assert report.engine["claim_rows"] == len(configs)

        with ParallelEvaluator(LiquidPlatform(), workers=1) as direct:
            reference = direct.measure_sweep(arith_small, configs)

        platform = LiquidPlatform()
        store = SqliteResultStore(path)
        store.bind_platform(platform.device, platform.timing_parameters)
        for config, expected in zip(configs, reference):
            assert store.get(arith_small, config) == expected
        store.close()

    def test_two_sequential_workers_split_the_grid(self, tmp_path,
                                                   base_config, arith_small):
        """Workers with partial grids each finish their share exactly once."""
        path = str(tmp_path / "grid.sqlite")
        configs = grid_configs(base_config, 8)
        with CampaignGrid(path) as grid:
            grid.register(arith_small, configs)
            first = drain(grid, arith_small, batch=2, max_batches=2)
            second = drain(grid, arith_small, batch=2)
            assert first.done + second.done == len(configs)
            counts = grid.status()
            assert counts[STATUS_DONE] == counts["total"]


class TestCampaignCli:
    def _run(self, *argv, timeout=120):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "run_experiments.py"),
             *argv],
            env=env, capture_output=True, text=True, timeout=timeout)

    def test_register_claim_status_round_trip(self, tmp_path):
        db = str(tmp_path / "cli.sqlite")
        register = self._run("--grid-db", db, "--register",
                             "--grid-scale", "small", "--grid-workloads", "arith")
        assert register.returncode == 0, register.stderr
        assert "registered arith" in register.stdout

        # before any worker runs, --assert-drained must fail
        undrained = self._run("--grid-db", db, "--status", "--assert-drained")
        assert undrained.returncode != 0

        claim = self._run("--grid-db", db, "--claim", "--grid-scale", "small",
                          "--grid-workloads", "arith", "--workers", "1",
                          "--batch", "8")
        assert claim.returncode == 0, claim.stderr
        assert "0 failed" in claim.stdout

        status = self._run("--grid-db", db, "--status", "--assert-drained")
        assert status.returncode == 0, status.stdout + status.stderr
        assert "0 open" in status.stdout


class TestAttemptAccountingAtTheCap:
    """Attempt counters at the ``max_attempts`` boundary.

    The budget arithmetic mixes three moves -- claiming burns an attempt,
    clean release refunds one, stale reclamation keeps it burnt -- and
    the boundary cases are where a bug would park rows forever (counter
    over the cap) or retry them forever (counter below zero).
    """

    @staticmethod
    def _attempts(grid):
        return dict(grid._conn.execute("SELECT id, attempts FROM experiments"))

    def test_row_at_exactly_the_cap_is_unclaimable_and_retires(
            self, tmp_path, base_config, arith_small):
        cap = 2
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.register(arith_small, grid_configs(base_config, 2))
            for crasher in ("w1", "w2"):
                rows = grid.claim(crasher, batch=100, max_attempts=cap)
                assert len(rows) == 2
                assert grid.reclaim_stale(0.0) == 2  # burnt, not refunded
            assert set(self._attempts(grid).values()) == {cap}
            # exactly at the cap: not claimable, but not yet failed either
            assert grid.claim("w3", batch=100, max_attempts=cap) == []
            assert grid.status()[STATUS_OPEN] == 2
            assert grid.retire_exhausted(cap) == 2
            assert grid.status()[STATUS_FAILED] == 2
            # retiring never bumps the counter past the cap
            assert set(self._attempts(grid).values()) == {cap}

    def test_clean_release_refunds_and_floors_at_zero(
            self, tmp_path, base_config, arith_small):
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.register(arith_small, grid_configs(base_config, 2))
            rows = grid.claim("w1", batch=100)
            ids = [row.rowid for row in rows]
            assert grid.release(ids) == 2
            assert set(self._attempts(grid).values()) == {0}
            # releasing rows that are no longer claimed is a no-op, not
            # a second refund driving the counter negative
            assert grid.release(ids) == 0
            assert grid.release_worker("w1") == 0
            assert set(self._attempts(grid).values()) == {0}
            # even a row whose counter was never bumped (crash between
            # the claim UPDATE's bookkeeping and a manual repair) floors
            # at zero instead of going negative
            grid._conn.execute(
                "UPDATE experiments SET status = 'claimed', worker = 'w1',"
                " attempts = 0")
            grid._conn.commit()
            assert grid.release_worker("w1") == 2
            assert set(self._attempts(grid).values()) == {0}
            assert grid.status()[STATUS_OPEN] == 2

    def test_reclaim_then_release_stays_inside_the_budget(
            self, tmp_path, base_config, arith_small):
        cap = 2
        with CampaignGrid(str(tmp_path / "grid.sqlite")) as grid:
            grid.register(arith_small, grid_configs(base_config, 2))
            grid.claim("w1", batch=100, max_attempts=cap)
            assert grid.reclaim_stale(0.0) == 2        # attempts: 1 (burnt)
            rows = grid.claim("w2", batch=100, max_attempts=cap)
            assert len(rows) == 2                       # attempts: 2 (at cap)
            assert set(self._attempts(grid).values()) == {cap}
            assert grid.release([row.rowid for row in rows]) == 2  # refund: 1
            assert set(self._attempts(grid).values()) == {1}
            # the refunded attempt is claimable again, back to the cap
            rows = grid.claim("w3", batch=100, max_attempts=cap)
            assert len(rows) == 2
            attempts = set(self._attempts(grid).values())
            assert attempts == {cap}
            assert grid.release_worker("w3") == 2
            assert set(self._attempts(grid).values()) == {1}

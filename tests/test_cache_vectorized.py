"""Equivalence of the columnar cache kernel with the scalar reference.

The kernel replay in :mod:`repro.microarch.cachekernel` must be
bit-identical to the per-access reference loop
(``Cache.simulate(vectorized=False)``) -- the hit/miss statistics
field for field, the final tag/age/FIFO state, and the position of the
seeded RANDOM victim stream -- for any trace (mixed reads and writes),
any replacement policy and any associativity.  The hypothesis tests
below drive randomized traces through the scalar oracles: the forced
``simulate(vectorized=False)`` loop and, for the direct-mapped corner,
the one-access-at-a-time ``Cache.access()`` API.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from conftest import SET_ASSOCIATIVE_WAYS, geometry_strategy, to_arrays, trace_strategy

from repro.config import Replacement
from repro.microarch.cache import Cache, CacheConfig
from repro.microarch.cachekernel import decode_trace, simulate_many


def scalar_reference(config: CacheConfig, addresses, writes):
    """Hit/miss counts via the single-access API (the slowest, simplest oracle)."""
    cache = Cache(config)
    read_misses = write_misses = 0
    for address, write in zip(addresses, writes):
        hit = cache.access(int(address), write=bool(write))
        if not hit:
            if write:
                write_misses += 1
            else:
                read_misses += 1
    return read_misses, write_misses, cache._tags.copy()


# wide addresses exercise tag widths; the shared default (1 << 10) forces conflicts
geometry = geometry_strategy(ways=(1,))
traces = trace_strategy(max_address=1 << 16)


@given(geometry=geometry, trace=traces)
@settings(max_examples=60, deadline=None)
def test_direct_mapped_vectorized_matches_scalar_access_loop(geometry, trace):
    config = CacheConfig(**geometry)
    addresses, writes = to_arrays(trace)

    ref_read, ref_write, ref_tags = scalar_reference(config, addresses, writes)

    vec_cache = Cache(config)
    stats = vec_cache.simulate(addresses, writes, vectorized=True)

    assert stats.read_misses == ref_read
    assert stats.write_misses == ref_write
    assert stats.accesses == len(trace)
    assert stats.write_accesses == int(writes.sum())
    np.testing.assert_array_equal(vec_cache._tags, ref_tags)


@given(geometry=geometry, trace=traces)
@settings(max_examples=30, deadline=None)
def test_direct_mapped_vectorized_matches_forced_scalar_simulate(geometry, trace):
    config = CacheConfig(**geometry)
    addresses, writes = to_arrays(trace)

    scalar_cache = Cache(config)
    scalar_stats = scalar_cache.simulate(addresses, writes, vectorized=False)
    vec_cache = Cache(config)
    vec_stats = vec_cache.simulate(addresses, writes)

    assert vec_stats == scalar_stats
    np.testing.assert_array_equal(vec_cache._tags, scalar_cache._tags)


@given(trace_a=traces, trace_b=traces)
@settings(max_examples=25, deadline=None)
def test_vectorized_path_preserves_state_across_calls(trace_a, trace_b):
    """Back-to-back simulate() calls must see the tag store left by the first."""
    config = CacheConfig(ways=1, setsize_kb=1, linesize_words=4)

    def run(vectorized):
        cache = Cache(config)
        out = []
        for trace in (trace_a, trace_b):
            addresses, writes = to_arrays(trace)
            out.append(cache.simulate(addresses, writes, vectorized=vectorized))
        return out, cache._tags.copy()

    vec_stats, vec_tags = run(vectorized=True)
    ref_stats, ref_tags = run(vectorized=False)
    assert vec_stats == ref_stats
    np.testing.assert_array_equal(vec_tags, ref_tags)


def test_read_only_trace_uses_direct_mapped_path():
    """A read-only direct-mapped trace with conflicts must count eviction misses."""
    config = CacheConfig(ways=1, setsize_kb=1, linesize_words=4)
    # two lines mapping to the same index, accessed alternately: all misses
    stride = config.lines_per_way * config.linesize_bytes
    addresses = np.asarray([0, stride] * 10, dtype=np.int64)
    stats = Cache(config).simulate(addresses)
    assert stats.read_misses == 20
    assert stats.hits == 0


# -- set-associative kernel equivalence --------------------------------------------------

set_associative_geometry = geometry_strategy(ways=SET_ASSOCIATIVE_WAYS)
# the shared default address space (1 << 10) forces conflicts, evictions
# and policy decisions
mixed_traces = trace_strategy()


def assert_state_identical(kernel_cache, scalar_cache):
    """Every replacement-relevant piece of cache state must match bit for bit."""
    np.testing.assert_array_equal(kernel_cache._tags, scalar_cache._tags)
    np.testing.assert_array_equal(kernel_cache._age, scalar_cache._age)
    np.testing.assert_array_equal(kernel_cache._fifo, scalar_cache._fifo)
    assert kernel_cache._tick == scalar_cache._tick
    assert (kernel_cache._rng.bit_generator.state
            == scalar_cache._rng.bit_generator.state)


@given(geometry=set_associative_geometry, trace=mixed_traces)
@settings(max_examples=120, deadline=None)
def test_set_associative_kernel_matches_scalar_reference(geometry, trace):
    """Kernel == scalar loop: statistics field for field, state, RANDOM stream."""
    config = CacheConfig(**geometry)
    addresses, writes = to_arrays(trace)

    scalar_cache = Cache(config)
    scalar_stats = scalar_cache.simulate(addresses, writes, vectorized=False)
    kernel_cache = Cache(config)
    kernel_stats = kernel_cache.simulate(addresses, writes)

    assert kernel_stats == scalar_stats  # dataclass equality: every field
    assert_state_identical(kernel_cache, scalar_cache)


@given(geometry=set_associative_geometry, trace_a=mixed_traces, trace_b=mixed_traces)
@settings(max_examples=40, deadline=None)
def test_set_associative_kernel_preserves_state_across_calls(geometry, trace_a, trace_b):
    """Back-to-back simulate() calls must see the warm state left by the first."""
    config = CacheConfig(**geometry)

    def run(vectorized):
        cache = Cache(config)
        out = []
        for trace in (trace_a, trace_b):
            addresses, writes = to_arrays(trace)
            out.append(cache.simulate(addresses, writes, vectorized=vectorized))
        return out, cache

    kernel_stats, kernel_cache = run(vectorized=None)
    scalar_stats, scalar_cache = run(vectorized=False)
    assert kernel_stats == scalar_stats
    assert_state_identical(kernel_cache, scalar_cache)


@given(trace=mixed_traces)
@settings(max_examples=25, deadline=None)
def test_simulate_many_matches_fresh_per_config_simulation(trace):
    """One decoded view replayed against many geometries == N fresh caches."""
    addresses, writes = to_arrays(trace)
    configs = [
        CacheConfig(ways=ways, setsize_kb=size, linesize_words=8, replacement=policy)
        for ways in (1, 2, 4)
        for size in (1, 4)
        for policy in Replacement.ALL
    ]
    view = decode_trace(addresses, writes, linesize_bytes=32)
    batched = simulate_many(view, configs)
    reference = [
        Cache(config).simulate(addresses, writes, vectorized=False)
        for config in configs
    ]
    assert batched == reference


def test_decoded_view_compresses_consecutive_same_line_runs():
    """Sequential word accesses within a line collapse to one event."""
    config = CacheConfig(ways=2, setsize_kb=1, linesize_words=8)
    addresses = np.arange(256, dtype=np.int64) * 4  # walk 32 lines word by word
    view = decode_trace(addresses, linesize_bytes=config.linesize_bytes)
    assert view.accesses == 256
    assert len(view) == 32  # one event per 8-word line
    assert view.compression == pytest.approx(8.0)
    stats = simulate_many(view, [config])[0]
    assert stats == Cache(config).simulate(addresses, vectorized=False)


def test_kernel_rejects_mismatched_linesize_view():
    config = CacheConfig(ways=2, setsize_kb=1, linesize_words=8)
    view = decode_trace(np.asarray([0, 4, 8], dtype=np.int64), linesize_bytes=16)
    with pytest.raises(Exception):
        Cache(config).simulate_view(view)


@pytest.mark.parametrize("geometry", [
    dict(ways=1, setsize_kb=1, linesize_words=4, replacement=Replacement.RANDOM),
    dict(ways=2, setsize_kb=1, linesize_words=8, replacement=Replacement.LRR),
    dict(ways=2, setsize_kb=2, linesize_words=4, replacement=Replacement.RANDOM),
    dict(ways=4, setsize_kb=1, linesize_words=8, replacement=Replacement.LRU),
])
def test_kernel_matches_scalar_on_all_paper_workload_traces(small_workload_map,
                                                            geometry):
    """The acceptance bar: kernel == scalar on the four real workload traces.

    Both the instruction-fetch stream (read-only, long same-line runs)
    and the data stream (mixed loads/stores, write-through no-allocate)
    of every paper workload must replay bit-identically.
    """
    config = CacheConfig(**geometry)
    for name, workload in small_workload_map.items():
        trace = workload.trace()
        for addresses, writes in ((trace.pcs, None),
                                  (trace.data_addresses, trace.data_is_write)):
            scalar_cache = Cache(config)
            scalar_stats = scalar_cache.simulate(addresses, writes, vectorized=False)
            kernel_cache = Cache(config)
            kernel_stats = kernel_cache.simulate(addresses, writes)
            assert kernel_stats == scalar_stats, f"kernel diverged on {name}"
            assert_state_identical(kernel_cache, scalar_cache)

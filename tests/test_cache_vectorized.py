"""Equivalence of the vectorized direct-mapped cache path with the scalar reference.

The vectorized tag-replay in :meth:`Cache._simulate_direct_mapped` must be
bit-identical to the per-access reference implementation -- both the
hit/miss statistics and the final tag-store state -- for any trace, any
replacement policy name and any geometry with ``ways == 1``.  The
hypothesis tests below drive randomized traces through three oracles:
the scalar ``simulate(vectorized=False)`` loop and the one-access-at-a-time
``Cache.access()`` API.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import Replacement
from repro.microarch.cache import Cache, CacheConfig


def scalar_reference(config: CacheConfig, addresses, writes):
    """Hit/miss counts via the single-access API (the slowest, simplest oracle)."""
    cache = Cache(config)
    read_misses = write_misses = 0
    for address, write in zip(addresses, writes):
        hit = cache.access(int(address), write=bool(write))
        if not hit:
            if write:
                write_misses += 1
            else:
                read_misses += 1
    return read_misses, write_misses, cache._tags.copy()


geometry = st.fixed_dictionaries({
    "setsize_kb": st.sampled_from([1, 2, 4]),
    "linesize_words": st.sampled_from([4, 8]),
    "replacement": st.sampled_from(sorted(Replacement.ALL)),
})
traces = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1 << 16), st.booleans()),
    min_size=0, max_size=400,
)


@given(geometry=geometry, trace=traces)
@settings(max_examples=60, deadline=None)
def test_direct_mapped_vectorized_matches_scalar_access_loop(geometry, trace):
    config = CacheConfig(ways=1, **geometry)
    addresses = np.asarray([a for a, _ in trace], dtype=np.int64) * 4  # word aligned
    writes = np.asarray([w for _, w in trace], dtype=bool)

    ref_read, ref_write, ref_tags = scalar_reference(config, addresses, writes)

    vec_cache = Cache(config)
    stats = vec_cache.simulate(addresses, writes, vectorized=True)

    assert stats.read_misses == ref_read
    assert stats.write_misses == ref_write
    assert stats.accesses == len(trace)
    assert stats.write_accesses == int(writes.sum())
    np.testing.assert_array_equal(vec_cache._tags, ref_tags)


@given(geometry=geometry, trace=traces)
@settings(max_examples=30, deadline=None)
def test_direct_mapped_vectorized_matches_forced_scalar_simulate(geometry, trace):
    config = CacheConfig(ways=1, **geometry)
    addresses = np.asarray([a for a, _ in trace], dtype=np.int64) * 4
    writes = np.asarray([w for _, w in trace], dtype=bool)

    scalar_cache = Cache(config)
    scalar_stats = scalar_cache.simulate(addresses, writes, vectorized=False)
    vec_cache = Cache(config)
    vec_stats = vec_cache.simulate(addresses, writes)

    assert vec_stats == scalar_stats
    np.testing.assert_array_equal(vec_cache._tags, scalar_cache._tags)


@given(trace_a=traces, trace_b=traces)
@settings(max_examples=25, deadline=None)
def test_vectorized_path_preserves_state_across_calls(trace_a, trace_b):
    """Back-to-back simulate() calls must see the tag store left by the first."""
    config = CacheConfig(ways=1, setsize_kb=1, linesize_words=4)

    def run(vectorized):
        cache = Cache(config)
        out = []
        for trace in (trace_a, trace_b):
            addresses = np.asarray([a for a, _ in trace], dtype=np.int64) * 4
            writes = np.asarray([w for _, w in trace], dtype=bool)
            out.append(cache.simulate(addresses, writes, vectorized=vectorized))
        return out, cache._tags.copy()

    vec_stats, vec_tags = run(vectorized=True)
    ref_stats, ref_tags = run(vectorized=False)
    assert vec_stats == ref_stats
    np.testing.assert_array_equal(vec_tags, ref_tags)


def test_read_only_trace_uses_direct_mapped_path():
    """A read-only direct-mapped trace with conflicts must count eviction misses."""
    config = CacheConfig(ways=1, setsize_kb=1, linesize_words=4)
    # two lines mapping to the same index, accessed alternately: all misses
    stride = config.lines_per_way * config.linesize_bytes
    addresses = np.asarray([0, stride] * 10, dtype=np.int64)
    stats = Cache(config).simulate(addresses)
    assert stats.read_misses == 20
    assert stats.hits == 0

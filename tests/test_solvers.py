"""Tests for the BINLP solvers, including optimality against brute force."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import PerturbationSpace, leon_parameter_space
from repro.core.binlp import BilinearConstraint, BinlpProblem, LinearConstraint
from repro.core.solvers import (
    BranchAndBoundSolver,
    ExhaustiveSolver,
    GreedyIndependentSolver,
    RandomSearchSolver,
)
from repro.core.weights import RUNTIME_OPTIMIZATION
from repro.errors import OptimizationError


def dcache_space():
    return PerturbationSpace(leon_parameter_space(), ["dcache_sets", "dcache_setsize_kb"])


def make_problem(objective, *, bound=20.0, sets_weight=None, size_weight=None):
    """A problem over the 8-variable dcache space with one bilinear constraint.

    ``objective`` must have 8 entries: 3 for the sets group and 5 for the
    set-size group.  The bilinear constraint mirrors the paper's cache BRAM
    form: (1 + sum position*x_sets) * (sum weight*x_size) <= bound.
    """
    space = dcache_space()
    sets_idx = tuple(v.index for v in space.variables_for("dcache_sets"))
    size_idx = tuple(v.index for v in space.variables_for("dcache_setsize_kb"))
    sets_weight = sets_weight or {index: float(pos + 1) for pos, index in enumerate(sets_idx)}
    size_weight = size_weight or {index: float(2 ** pos) for pos, index in enumerate(size_idx)}
    constraint = BilinearConstraint(
        name="bram_capacity",
        products=((1.0, sets_weight, size_weight),),
        linear={i: 0.5 for i in sets_idx},
        bound=bound,
    )
    return BinlpProblem(
        space=space,
        objective=tuple(objective),
        groups=tuple(g.variable_indices for g in space.groups),
        linear_constraints=(),
        resource_constraints=(constraint,),
        weights=RUNTIME_OPTIMIZATION,
        name="test",
    )


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(objective=st.lists(st.integers(-50, 20).map(float), min_size=8, max_size=8),
           bound=st.integers(2, 40).map(float))
    def test_branch_and_bound_matches_exhaustive(self, objective, bound):
        problem = make_problem(objective, bound=bound)
        bnb = BranchAndBoundSolver().solve(problem)
        exhaustive = ExhaustiveSolver().solve(problem)
        assert bnb.feasible and exhaustive.feasible
        assert bnb.objective == pytest.approx(exhaustive.objective)
        assert problem.is_feasible(bnb.selection)

    @settings(max_examples=25, deadline=None)
    @given(objective=st.lists(st.integers(-50, 20).map(float), min_size=8, max_size=8))
    def test_greedy_never_beats_branch_and_bound(self, objective):
        problem = make_problem(objective)
        bnb = BranchAndBoundSolver().solve(problem)
        greedy = GreedyIndependentSolver().solve(problem)
        if greedy.feasible:
            assert bnb.objective <= greedy.objective + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(objective=st.lists(st.integers(-50, 20).map(float), min_size=8, max_size=8))
    def test_random_search_returns_feasible_solutions(self, objective):
        problem = make_problem(objective)
        solution = RandomSearchSolver(samples=300, seed=1).solve(problem)
        assert problem.is_feasible(solution.selection)
        bnb = BranchAndBoundSolver().solve(problem)
        assert bnb.objective <= solution.objective + 1e-9


class TestSolverBehaviour:
    def test_no_improving_variable_keeps_the_base(self):
        problem = make_problem([5.0] * 8)
        for solver in (BranchAndBoundSolver(), ExhaustiveSolver(),
                       GreedyIndependentSolver(), RandomSearchSolver(samples=50)):
            solution = solver.solve(problem)
            assert solution.selection == ()
            assert solution.objective == 0.0

    def test_constraint_forces_second_best_choice(self):
        # the most attractive set-size option violates the bilinear budget when
        # combined with extra sets, so the solver must trade one of them away.
        objective = [-10.0, -11.0, -12.0, -1.0, -2.0, -3.0, -4.0, -40.0]
        problem = make_problem(objective, bound=8.0)
        solution = BranchAndBoundSolver().solve(problem)
        exhaustive = ExhaustiveSolver().solve(problem)
        assert solution.objective == pytest.approx(exhaustive.objective)
        assert problem.is_feasible(solution.selection)

    def test_unconstrained_problem_takes_best_of_each_group(self):
        objective = [-1.0, -2.0, -3.0, -10.0, -20.0, -5.0, -6.0, -7.0]
        problem = make_problem(objective, bound=1e9)
        solution = BranchAndBoundSolver().solve(problem)
        labels = {problem.space.variable(i).label for i in solution.selection}
        assert labels == {"dcache_sets=4", "dcache_setsize_kb=2"}

    def test_exhaustive_solver_refuses_huge_problems(self):
        space = PerturbationSpace(leon_parameter_space())
        problem = BinlpProblem(
            space=space,
            objective=tuple(0.0 for _ in range(len(space))),
            groups=tuple(g.variable_indices for g in space.groups),
            linear_constraints=(),
            resource_constraints=(),
            weights=RUNTIME_OPTIMIZATION,
        )
        with pytest.raises(OptimizationError):
            ExhaustiveSolver(max_combinations=10_000).solve(problem)

    def test_node_limit_returns_best_found_or_raises(self):
        objective = [-10.0, -11.0, -12.0, -1.0, -2.0, -3.0, -4.0, -40.0]
        problem = make_problem(objective, bound=8.0)
        solution = BranchAndBoundSolver(node_limit=3).solve(problem)
        # with an absurdly small limit the solver still returns a feasible
        # (possibly empty) selection and reports that it is not proven optimal
        assert problem.is_feasible(solution.selection)
        assert not solution.optimal

    def test_solution_description(self):
        problem = make_problem([-1.0] * 8)
        solution = BranchAndBoundSolver().solve(problem)
        text = solution.describe()
        assert "branch-and-bound" in text and "objective" in text

    def test_linear_constraint_evaluation(self):
        constraint = LinearConstraint("c", {0: 1.0, 1: -1.0}, 0.0)
        assert constraint.satisfied({1})
        assert not constraint.satisfied({0})
        assert constraint.value({0, 1}) == pytest.approx(0.0)

    def test_bilinear_constraint_evaluation(self):
        constraint = BilinearConstraint(
            "b", products=((1.0, {0: 1.0}, {1: 4.0}),), linear={2: 2.0}, bound=7.0)
        assert constraint.value({1}) == pytest.approx(4.0)       # (1 + 0) * 4
        assert constraint.value({0, 1}) == pytest.approx(8.0)    # (1 + 1) * 4
        assert constraint.value({0, 1, 2}) == pytest.approx(10.0)
        assert constraint.satisfied({1}) and not constraint.satisfied({0, 1})
